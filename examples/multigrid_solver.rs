//! The paper's headline application: the full HPGMG geometric-multigrid
//! solver driven entirely by Snowflake stencils, runnable on any backend
//! from a single source (§V / Figure 9).
//!
//!     cargo run --release --example multigrid_solver            # omp backend
//!     cargo run --release --example multigrid_solver -- oclsim 32
//!     cargo run --release --example multigrid_solver -- cjit 64
//!
//! Arguments: [backend] [finest-size] [vcycles]; backend is any
//! registry name (`available_backends()`).

use std::time::Instant;

use snowflake::backends::{backend_from_name, BackendOptions};
use snowflake::hpgmg::{HandSolver, Problem, SnowSolver};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let backend_name = args.get(1).map(String::as_str).unwrap_or("omp");
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(32);
    let cycles: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(10);

    let backend = backend_from_name(backend_name, &BackendOptions::default()).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });

    let problem = Problem::poisson_vc(n);
    println!(
        "HPGMG (variable-coefficient Poisson), {n}^3 finest, levels {:?}",
        problem.level_sizes()
    );

    // --- Snowflake-driven solver -----------------------------------------
    println!("\n[Snowflake / {backend_name}]");
    let mut solver = SnowSolver::new(problem, backend).expect("build solver");
    let t0 = Instant::now();
    let norms = solver.solve(cycles).expect("solve");
    let dt = t0.elapsed().as_secs_f64();
    for (c, r) in norms.iter().enumerate() {
        println!("  cycle {c:>2}: residual {r:.6e}");
    }
    let (hits, misses) = solver.cache_stats();
    println!(
        "  {:.3} s, {:.3} MDOF/s, error vs exact discrete solution: {:.3e}",
        dt,
        solver.dof() as f64 / dt / 1e6,
        solver.error_norm()
    );
    println!("  JIT cache: {misses} compilations, {hits} hits");

    // --- Hand-optimized baseline (the paper's comparator) -----------------
    println!("\n[hand-optimized baseline]");
    let mut hand = HandSolver::new(problem);
    let t0 = Instant::now();
    let hnorms = hand.solve(cycles);
    let dt_hand = t0.elapsed().as_secs_f64();
    println!(
        "  {:.3} s, {:.3} MDOF/s, final residual {:.6e}",
        dt_hand,
        (n * n * n) as f64 / dt_hand / 1e6,
        hnorms[cycles]
    );

    let ratio = dt / dt_hand;
    println!(
        "\nSnowflake/{backend_name} runs at {:.2}x the hand-optimized time \
         (paper: ~1x for OpenMP on CPU, ~2x for OpenCL on GPU).",
        ratio
    );
}
