//! Periodic boundaries in action: 2-D upwind advection on a torus.
//!
//! The wrap-around ghosts are stencils with offsets of `n−2` cells — the
//! paper's "boundary conditions … expressed as stencils with (sometimes)
//! large offsets" — and the finite-domain analysis proves all four wrap
//! faces independent, scheduling them into a single barrier phase before
//! each transport step.
//!
//!     cargo run --release --example periodic_advection

use snowflake::core::bc::periodic_faces;
use snowflake::prelude::*;

const N: usize = 66; // 64 interior + wrap ghosts
const STEPS: usize = 640;

fn main() {
    // First-order upwind transport with velocity (+1, +1)·c, CFL 0.2:
    //   u_next = u − c·(u − u_west) − c·(u − u_south)
    let c = 0.1f64;
    let u = |o: [i64; 2]| Expr::read_at("u", &o);
    let update = u([0, 0])
        - Expr::Const(c) * (u([0, 0]) - u([-1, 0]))
        - Expr::Const(c) * (u([0, 0]) - u([0, -1]));

    let mut step = StencilGroup::new();
    for f in periodic_faces("u", &[N, N]) {
        step.push(f);
    }
    step.push(Stencil::new(update, "u_next", RectDomain::interior(2)).named("upwind"));

    // Initial condition: a square pulse near the origin.
    let mut grids = GridSet::new();
    grids.insert(
        "u",
        Grid::from_fn(&[N, N], |p| {
            if (4..12).contains(&p[0]) && (4..12).contains(&p[1]) {
                1.0
            } else {
                0.0
            }
        }),
    );
    grids.insert("u_next", Grid::new(&[N, N]));

    // Verify the schedule: 4 independent wrap faces, then the sweep.
    {
        use snowflake::analysis::{greedy_phases, ResolvedStencil};
        let shapes = grids.shapes();
        let resolved: Vec<_> = step
            .stencils()
            .iter()
            .map(|s| ResolvedStencil::resolve(s, &shapes).unwrap())
            .collect();
        let phases = greedy_phases(&resolved).phases;
        println!("schedule: {phases:?}  (4 wrap faces fused into one phase)");
        assert_eq!(phases.len(), 2);
    }

    let interior_mass = |gs: &GridSet, name: &str| {
        let g = gs.get(name).unwrap();
        let mut m = 0.0;
        for i in 1..N - 1 {
            for j in 1..N - 1 {
                m += g.get(&[i, j]);
            }
        }
        m
    };

    let cache = CompileCache::new(Box::new(OmpBackend::new()));
    let m0 = interior_mass(&grids, "u");
    let mut peak_track = Vec::new();
    for s in 1..=STEPS {
        cache.run(&step, &mut grids).expect("step");
        grids.swap_data("u", "u_next").expect("ping-pong swap");
        if s % 160 == 0 {
            // Locate the pulse peak.
            let g = grids.get("u").unwrap();
            let mut best = (0usize, 0usize, 0.0f64);
            for i in 1..N - 1 {
                for j in 1..N - 1 {
                    let v = g.get(&[i, j]);
                    if v > best.2 {
                        best = (i, j, v);
                    }
                }
            }
            peak_track.push((s, best));
        }
    }
    let m1 = interior_mass(&grids, "u");

    println!(
        "\nupwind transport on a {0}x{0} torus, {STEPS} steps, CFL {c}",
        N - 2
    );
    for (s, (i, j, v)) in &peak_track {
        println!("  step {s:>4}: pulse peak at ({i:>2},{j:>2}), height {v:.3}");
    }
    println!(
        "\nmass conservation: Σu = {m0:.6} -> {m1:.6}  (drift {:.2e})",
        (m1 - m0).abs() / m0
    );
    assert!(
        ((m1 - m0) / m0).abs() < 1e-9,
        "periodic upwind transport conserves mass to rounding"
    );
    println!("The pulse crossed the periodic boundary and came back around —");
    println!("the wrap was just four more stencils.");
}
