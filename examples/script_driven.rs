//! Stencil programs as *data*: parse a Snowflake script at run time,
//! analyze it, compile it on a backend and run it — the dynamism of the
//! paper's Python embedding, restored to the Rust port by the text
//! front-end (`snowflake::core::parser`).
//!
//!     cargo run --release --example script_driven

use snowflake::analysis::{greedy_phases, ResolvedStencil};
use snowflake::core::parser;
use snowflake::prelude::*;

const SCRIPT: &str = r#"
# 2-D variable-coefficient GSRB with Dirichlet boundaries,
# written in the Snowflake script language (compare Figure 4).
grid mesh rhs beta_x beta_y lambda

domain red    = (1,1):(-1,-1):(2,2) + (2,2):(-1,-1):(2,2)
domain black  = (1,2):(-1,-1):(2,2) + (2,1):(-1,-1):(2,2)
domain ilo    = (0,1):(0,-1):(0,1)
domain ihi    = (-1,1):(-1,-1):(0,1)
domain jlo    = (1,0):(-1,0):(1,0)
domain jhi    = (1,-1):(-1,-1):(1,0)

# A = -div(beta grad): positive-definite center, negative neighbors.
expr diag   = beta_x[1,0] + beta_x[0,0] + beta_y[0,1] + beta_y[0,0]
expr ax     = diag*mesh[0,0] - beta_x[1,0]*mesh[1,0] - beta_x[0,0]*mesh[-1,0] - beta_y[0,1]*mesh[0,1] - beta_y[0,0]*mesh[0,-1]
expr update = mesh[0,0] + lambda[0,0]*(rhs[0,0] - ax)

stencil bc_ilo: mesh[ilo] = -mesh[1,0]
stencil bc_ihi: mesh[ihi] = -mesh[-1,0]
stencil bc_jlo: mesh[jlo] = -mesh[0,1]
stencil bc_jhi: mesh[jhi] = -mesh[0,-1]
stencil red_pass:   mesh[red]   = update
stencil black_pass: mesh[black] = update

group sweep = bc_ilo bc_ihi bc_jlo bc_jhi red_pass bc_ilo bc_ihi bc_jlo bc_jhi black_pass
"#;

fn main() {
    let n = 34usize;

    // --- parse --------------------------------------------------------
    let script = parser::parse(SCRIPT).expect("script parses");
    println!(
        "parsed: {} grids, {} domains, {} exprs, {} stencils, {} groups",
        script.grids.len(),
        script.domains.len(),
        script.exprs.len(),
        script.stencils.len(),
        script.groups.len()
    );
    let sweep = script.group("sweep").expect("group `sweep`");

    // --- meshes ---------------------------------------------------------
    let h = 1.0 / (n - 2) as f64;
    let mut grids = GridSet::new();
    grids.insert("mesh", Grid::new(&[n, n]));
    let mut rhs = Grid::new(&[n, n]);
    rhs.fill_random(1, -1.0, 1.0);
    grids.insert("rhs", rhs);
    let beta = |x: f64, y: f64| 1.0 + 0.5 * (4.0 * x).sin() * (3.0 * y).cos();
    let cc = |i: usize| (i as f64 - 0.5) * h;
    let fc = |i: usize| (i as f64 - 1.0) * h;
    grids.insert(
        "beta_x",
        Grid::from_fn(&[n, n], |p| beta(fc(p[0]), cc(p[1]))),
    );
    grids.insert(
        "beta_y",
        Grid::from_fn(&[n, n], |p| beta(cc(p[0]), fc(p[1]))),
    );
    let bx = grids.get("beta_x").unwrap().clone();
    let by = grids.get("beta_y").unwrap().clone();
    grids.insert(
        "lambda",
        Grid::from_fn(&[n, n], |p| {
            let (i, j) = (p[0], p[1]);
            if i == 0 || j == 0 || i == n - 1 || j == n - 1 {
                0.0
            } else {
                1.0 / (bx.get(&[i + 1, j])
                    + bx.get(&[i, j])
                    + by.get(&[i, j + 1])
                    + by.get(&[i, j]))
            }
        }),
    );

    // --- analyze ----------------------------------------------------------
    let shapes = grids.shapes();
    let resolved: Vec<_> = sweep
        .stencils()
        .iter()
        .map(|s| ResolvedStencil::resolve(s, &shapes).expect("resolve"))
        .collect();
    let sched = greedy_phases(&resolved);
    println!(
        "analysis: {} stencils -> {} barrier phases {:?}",
        sweep.len(),
        sched.phases.len(),
        sched.phases
    );

    // --- compile & relax ---------------------------------------------------
    let cache = CompileCache::new(Box::new(OmpBackend::new()));
    let before = grids.get("mesh").unwrap().norm_l2();
    for _ in 0..200 {
        cache.run(sweep, &mut grids).expect("sweep");
    }
    let after = grids.get("mesh").unwrap().norm_l2();
    let (hits, misses) = cache.stats();
    println!("relaxed 200 sweeps: ||mesh|| {before:.3} -> {after:.3} ({misses} compilations, {hits} cache hits)");
    println!("\nThe whole pipeline — parsing, Diophantine scheduling, JIT compile,\nparallel execution — ran from a program that existed only as text.");
}
