//! Quickstart: define a stencil, compile it on several micro-compiler
//! backends, and run it — the paper's core workflow in ~60 lines.
//!
//!     cargo run --release --example quickstart

use snowflake::prelude::*;

fn main() {
    // --- 1. Describe the computation (the DSL layer, Table I) ----------
    //
    // A 2-D 5-point Laplacian: weights around a center point, bound to the
    // grid named "u" by a Component.
    let laplacian = Component::new("u", weights2![[0, 1, 0], [1, -4, 1], [0, 1, 0]]);

    // Apply it over the interior of whatever grid it ends up running on:
    // negative bounds are relative to the grid size, so this stencil works
    // unchanged for every mesh resolution.
    let stencil = Stencil::new(laplacian, "out", RectDomain::interior(2)).named("laplacian");
    let group = StencilGroup::from(stencil);

    // --- 2. Provide meshes ----------------------------------------------
    let n = 64usize;
    let mut grids = GridSet::new();
    // u(i,j) = i² + j²  →  Δu = 4 exactly (2nd differences of quadratics).
    grids.insert(
        "u",
        Grid::from_fn(&[n, n], |p| (p[0] * p[0] + p[1] * p[1]) as f64),
    );
    grids.insert("out", Grid::new(&[n, n]));

    // --- 3. Compile & run on interchangeable backends --------------------
    let backends: Vec<Box<dyn Backend>> = vec![
        Box::new(InterpreterBackend),
        Box::new(SequentialBackend::new()),
        Box::new(OmpBackend::new()),
        Box::new(OclSimBackend::new()),
    ];
    for backend in &backends {
        grids.get_mut("out").unwrap().fill(0.0);
        let exe = backend
            .compile(&group, &grids.shapes())
            .expect("compile laplacian");
        let t0 = std::time::Instant::now();
        exe.run(&mut grids).expect("run");
        let dt = t0.elapsed();
        let v = grids.get("out").unwrap().get(&[n / 2, n / 2]);
        println!(
            "{:<8} -> out[{},{}] = {v}  ({} points in {dt:?})",
            backend.name(),
            n / 2,
            n / 2,
            exe.points_per_run()
        );
        assert_eq!(v, 4.0);
    }

    // The C JIT (emit C99+OpenMP, cc, dlopen) if a compiler is present.
    if CJitBackend::available() {
        grids.get_mut("out").unwrap().fill(0.0);
        let exe = CJitBackend::new()
            .compile(&group, &grids.shapes())
            .expect("cjit compile");
        exe.run(&mut grids).expect("cjit run");
        println!(
            "cjit     -> out[{},{}] = {}",
            n / 2,
            n / 2,
            grids.get("out").unwrap().get(&[n / 2, n / 2])
        );
    } else {
        println!("cjit     -> skipped (no C compiler found)");
    }

    println!("\nAll backends computed Δ(i²+j²) = 4 from one stencil definition.");
}
