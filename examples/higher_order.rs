//! Higher-order operators (§II: "higher-order operators (larger
//! stencils)"): the same DSL pipeline runs 2nd-, 4th- and 6th-order
//! Laplacians — only the weight array changes — and the measured
//! truncation error shrinks at the theoretical rate.
//!
//!     cargo run --release --example higher_order

use snowflake::core::ops::{laplacian, Order};
use snowflake::prelude::*;

/// Apply an `order`-accurate 2-D Laplacian to u(x,y)=sin(πx)sin(πy) on an
/// n×n mesh and return the max truncation error against Δu = −2π²u.
fn truncation_error(order: Order, n: usize, backend: &dyn Backend) -> f64 {
    use std::f64::consts::PI;
    let reach = order.reach();
    let h = 1.0 / (n - 1) as f64;
    let u = |i: usize, j: usize| (PI * i as f64 * h).sin() * (PI * j as f64 * h).sin();

    let mut grids = GridSet::new();
    grids.insert("u", Grid::from_fn(&[n, n], |p| u(p[0], p[1])));
    grids.insert("lap", Grid::new(&[n, n]));

    // Interior shrinks with the stencil reach; the rest of the program is
    // order-independent.
    let dom = RectDomain::new(&[reach, reach], &[-reach, -reach], &[1, 1]);
    let stencil = Stencil::new(
        Component::new("u", laplacian(2, order)).expand() * Expr::Const(1.0 / (h * h)),
        "lap",
        dom,
    );
    let exe = backend
        .compile(&StencilGroup::from(stencil), &grids.shapes())
        .expect("compile");
    exe.run(&mut grids).expect("run");

    let lap = grids.get("lap").unwrap();
    let mut err = 0.0f64;
    // reach is a small positive stencil radius; the cast is exact.
    #[allow(clippy::cast_possible_truncation)]
    let r = reach as usize;
    for i in r..n - r {
        for j in r..n - r {
            let exact = -2.0 * PI * PI * u(i, j);
            err = err.max((lap.get(&[i, j]) - exact).abs());
        }
    }
    err
}

fn main() {
    let backend = OmpBackend::new();
    println!("max truncation error of the DSL-generated Laplacian on sin(πx)sin(πy):\n");
    println!(
        "{:>6}  {:>12}  {:>12}  {:>12}",
        "n", "2nd order", "4th order", "6th order"
    );
    let mut prev: Option<[f64; 3]> = None;
    for n in [17usize, 33, 65, 129] {
        let errs = [
            truncation_error(Order::Second, n, &backend),
            truncation_error(Order::Fourth, n, &backend),
            truncation_error(Order::Sixth, n, &backend),
        ];
        print!(
            "{n:>6}  {:>12.3e}  {:>12.3e}  {:>12.3e}",
            errs[0], errs[1], errs[2]
        );
        if let Some(p) = prev {
            print!(
                "   (ratios: {:.1}x, {:.1}x, {:.1}x)",
                p[0] / errs[0],
                p[1] / errs[1],
                p[2] / errs[2]
            );
        }
        println!();
        prev = Some(errs);
    }
    println!(
        "\nHalving h divides the error by ~4 (2nd), ~16 (4th) and ~64 (6th):\n\
         the larger stencils flow through the identical analysis, lowering\n\
         and backends — only the WeightArray changed."
    );
}
