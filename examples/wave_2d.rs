//! A time-stepping application: the 2-D wave equation with a leapfrog
//! scheme, showing how a simulation loop composes Snowflake stencils —
//! multiple input grids, an out-of-place update, reflecting boundaries,
//! and the compile-once/run-many JIT cache.
//!
//!     u_tt = c² Δu
//!     u_next = 2·u_now − u_prev + (c·dt/h)² Δu_now
//!
//!     cargo run --release --example wave_2d

use snowflake::prelude::*;

const N: usize = 130; // 128 interior + ghost
const STEPS: usize = 200;

fn main() {
    let courant2 = 0.25f64; // (c·dt/h)², < 0.5 for stability in 2-D

    // Leapfrog update: reads two time levels, writes a third.
    let lap_now = Component::new("u_now", weights2![[0, 1, 0], [1, -4, 1], [0, 1, 0]]);
    let update = 2.0 * Expr::read_at("u_now", &[0, 0]) - Expr::read_at("u_prev", &[0, 0])
        + Expr::Const(courant2) * lap_now;

    // Reflecting (Neumann-ish) boundary: ghost = inside value.
    let face =
        |dom: RectDomain, off: [i64; 2]| Stencil::new(Expr::read_at("u_now", &off), "u_now", dom);
    let mut step = StencilGroup::new();
    step.push(face(RectDomain::new(&[0, 1], &[0, -1], &[0, 1]), [1, 0]));
    step.push(face(RectDomain::new(&[-1, 1], &[-1, -1], &[0, 1]), [-1, 0]));
    step.push(face(RectDomain::new(&[1, 0], &[-1, 0], &[1, 0]), [0, 1]));
    step.push(face(RectDomain::new(&[1, -1], &[-1, -1], &[1, 0]), [0, -1]));
    step.push(Stencil::new(update, "u_next", RectDomain::interior(2)).named("leapfrog"));

    // Initial condition: a Gaussian pulse off-center; u_prev = u_now
    // (zero initial velocity).
    let pulse = |p: &[usize]| {
        let (x, y) = (p[0] as f64 / N as f64, p[1] as f64 / N as f64);
        let r2 = (x - 0.35).powi(2) + (y - 0.4).powi(2);
        (-r2 / 0.002).exp()
    };
    let mut grids = GridSet::new();
    grids.insert("u_now", Grid::from_fn(&[N, N], pulse));
    grids.insert("u_prev", Grid::from_fn(&[N, N], pulse));
    grids.insert("u_next", Grid::new(&[N, N]));

    // Compile once; rotating the three time levels reuses the cached
    // executable because the names stay fixed (we rotate the data).
    let cache = CompileCache::new(Box::new(OmpBackend::new()));
    let t0 = std::time::Instant::now();
    let mut energy_history = Vec::new();
    for s in 0..STEPS {
        cache.run(&step, &mut grids).expect("step");
        // Rotate time levels: prev <- now <- next <- (old prev storage).
        let prev = grids.get("u_prev").unwrap().clone();
        let now = grids.get("u_now").unwrap().clone();
        let next = grids.get("u_next").unwrap().clone();
        *grids.get_mut("u_prev").unwrap() = now;
        *grids.get_mut("u_now").unwrap() = next;
        *grids.get_mut("u_next").unwrap() = prev;
        if s % 50 == 0 {
            let e = grids.get("u_now").unwrap().norm_l2();
            energy_history.push((s, e));
        }
    }
    let dt = t0.elapsed().as_secs_f64();

    println!(
        "2-D wave equation, {0}x{0} grid, {STEPS} leapfrog steps",
        N - 2
    );
    for (s, e) in &energy_history {
        println!("  step {s:>4}: ||u||_2 = {e:.4}");
    }
    let (hits, misses) = cache.stats();
    println!(
        "\n{:.1} Msteps·cells/s, JIT cache: {misses} compilations / {hits} hits",
        (STEPS * (N - 2) * (N - 2)) as f64 / dt / 1e6
    );

    // ASCII snapshot of the wavefield.
    println!("\nwavefield snapshot (40x40 downsample):");
    let u = grids.get("u_now").unwrap();
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    for i in (1..N - 1).step_by((N - 2) / 40) {
        let mut line = String::new();
        for j in (1..N - 1).step_by((N - 2) / 40) {
            let v = u.get(&[i, j]).abs().min(0.999);
            // v is clamped to [0, 0.999], so the cast lands in 0..=9.
            #[allow(clippy::cast_possible_truncation)]
            line.push(shades[(v * 10.0) as usize]);
        }
        println!("  {line}");
    }
}
